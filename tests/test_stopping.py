"""Tests for the composable stopping rules and their runner integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AnyOfStop,
    BiasThresholdStop,
    Configuration,
    MetricThresholdStop,
    MonochromaticStop,
    PluralityFractionStop,
    RoundBudgetStop,
    ThreeMajority,
    run_ensemble,
    run_process,
    stopping_from_dict,
)


class TestRulePredicates:
    def test_monochromatic(self):
        rule = MonochromaticStop()
        assert rule.met(np.array([10, 0, 0]), 10, 1)
        assert not rule.met(np.array([9, 1, 0]), 10, 1)
        out = rule.met_many(np.array([[10, 0], [5, 5]]), 10, 0)
        assert out.tolist() == [True, False]

    def test_plurality_fraction(self):
        rule = PluralityFractionStop(0.8)
        assert rule.met(np.array([8, 1, 1]), 10, 1)
        assert not rule.met(np.array([7, 2, 1]), 10, 1)
        assert rule.met_many(np.array([[8, 2], [7, 3]]), 10, 1).tolist() == [True, False]

    def test_plurality_fraction_validates(self):
        with pytest.raises(ValueError, match="fraction"):
            PluralityFractionStop(0.0)
        with pytest.raises(ValueError, match="fraction"):
            PluralityFractionStop(1.5)

    def test_bias_threshold(self):
        rule = BiasThresholdStop(5)
        assert rule.met(np.array([9, 4, 1]), 14, 1)
        assert not rule.met(np.array([9, 5, 0]), 14, 1)
        out = rule.met_many(np.array([[9, 4, 1], [6, 6, 2]]), 14, 1)
        assert out.tolist() == [True, False]

    def test_bias_threshold_single_color(self):
        assert BiasThresholdStop(3).met_many(np.array([[7]]), 7, 0).tolist() == [True]

    def test_round_budget(self):
        rule = RoundBudgetStop(3)
        assert not rule.met(np.array([5, 5]), 10, 2)
        assert rule.met(np.array([5, 5]), 10, 3)
        assert rule.met_many(np.array([[5, 5]]), 10, 7).tolist() == [True]

    def test_any_of_reports_first_firing_member(self):
        rule = AnyOfStop([BiasThresholdStop(100), RoundBudgetStop(2)])
        counts = np.array([5, 5])
        assert rule.fired(counts, 10, 1) is None
        assert rule.fired(counts, 10, 2) == "round-budget"
        both = AnyOfStop([RoundBudgetStop(0), PluralityFractionStop(0.1)])
        # Both members fire; the first in order wins.
        assert both.fired(np.array([9, 1]), 10, 5) == "round-budget"
        names = both.fired_many(np.array([[9, 1], [5, 5]]), 10, 5)
        assert names.tolist() == ["round-budget", "round-budget"]

    def test_any_of_rejects_empty_and_junk(self):
        with pytest.raises(ValueError, match="at least one"):
            AnyOfStop([])
        with pytest.raises(ValueError, match="stopping rules"):
            AnyOfStop([42])


class TestStoppingOverMetrics:
    """The configuration rules are thresholds over registered metrics.

    One vectorized evaluation path (the metric's ``compute_many``) serves
    both ``met`` and ``met_many``, and the ``stopped_by`` label vocabulary
    survives the rewrite unchanged.
    """

    def test_rules_are_metric_thresholds(self):
        assert isinstance(MonochromaticStop(), MetricThresholdStop)
        assert isinstance(PluralityFractionStop(0.5), MetricThresholdStop)
        assert isinstance(BiasThresholdStop(3), MetricThresholdStop)
        assert MonochromaticStop().metric_name == "plurality-count"
        assert PluralityFractionStop(0.5).metric_name == "plurality-count"
        assert BiasThresholdStop(3).metric_name == "bias"

    def test_met_is_met_many_on_one_row(self):
        counts = np.array([[8, 1, 1], [4, 4, 2], [10, 0, 0]])
        for rule in (MonochromaticStop(), PluralityFractionStop(0.8), BiasThresholdStop(3)):
            batched = rule.met_many(counts, 10, 1)
            scalar = [rule.met(row, 10, 1) for row in counts]
            assert batched.tolist() == scalar

    def test_legacy_stopped_by_vocabulary_unchanged(self):
        """The rewrite must not rename any label a downstream consumer parses."""
        assert MonochromaticStop().rule == "monochromatic"
        assert PluralityFractionStop(0.5).rule == "plurality-fraction"
        assert BiasThresholdStop(3).rule == "bias-threshold"
        assert RoundBudgetStop(1).rule == "round-budget"
        assert AnyOfStop([RoundBudgetStop(1)]).rule == "any-of"
        from repro.core.stopping import BUDGET_EXHAUSTED

        assert BUDGET_EXHAUSTED == "max-rounds"

    def test_legacy_labels_survive_in_runner_results(self):
        cfg = Configuration.biased(20_000, 4, 2_000)
        res = run_process(
            ThreeMajority(), cfg, rng=0, stopping=PluralityFractionStop(0.5), max_rounds=10_000
        )
        assert res.stopped_by in {"monochromatic", "plurality-fraction"}
        ens = run_ensemble(
            ThreeMajority(), cfg, 8, rng=0, stopping=BiasThresholdStop(8_000), max_rounds=5_000
        )
        assert set(ens.stop_reasons()) <= {"monochromatic", "bias-threshold", "max-rounds"}

    def test_plurality_fraction_comparison_unchanged(self):
        # The threshold compares the integer plurality count against
        # fraction·n, exactly like the pre-metric implementation — the
        # boundary case (count == fraction·n) must still fire.
        rule = PluralityFractionStop(0.5)
        assert rule.met(np.array([5, 3, 2]), 10, 0)
        assert not rule.met(np.array([4, 3, 3]), 10, 0)


class TestSerialization:
    @pytest.mark.parametrize(
        "rule",
        [
            MonochromaticStop(),
            PluralityFractionStop(0.75),
            BiasThresholdStop(10),
            RoundBudgetStop(500),
            AnyOfStop([PluralityFractionStop(0.9), RoundBudgetStop(100)]),
        ],
    )
    def test_round_trip(self, rule):
        assert stopping_from_dict(rule.to_dict()) == rule

    def test_nested_dicts_accepted(self):
        rule = stopping_from_dict(
            {"rule": "any-of", "rules": [{"rule": "bias-threshold", "threshold": 3}]}
        )
        assert isinstance(rule, AnyOfStop)
        assert rule.rules[0] == BiasThresholdStop(3)

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError, match="unknown stopping rule"):
            stopping_from_dict({"rule": "nope"})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="plurality-fraction"):
            stopping_from_dict({"rule": "plurality-fraction", "fractoin": 0.5})

    def test_missing_rule_key_rejected(self):
        with pytest.raises(ValueError, match="'rule' key"):
            stopping_from_dict({"fraction": 0.5})


class TestRunProcessIntegration:
    def test_records_monochromatic(self):
        res = run_process(ThreeMajority(), Configuration.biased(5_000, 4, 800), rng=0)
        assert res.converged
        assert res.stopped_by == "monochromatic"

    def test_records_max_rounds(self):
        res = run_process(ThreeMajority(), Configuration.balanced(10_000, 10), rng=0, max_rounds=2)
        assert not res.converged
        assert res.stopped_by == "max-rounds"

    def test_plurality_fraction_rule_fires_and_is_recorded(self):
        cfg = Configuration.biased(20_000, 4, 2_000)
        res = run_process(
            ThreeMajority(),
            cfg,
            rng=0,
            stopping=PluralityFractionStop(0.5),
            max_rounds=10_000,
        )
        if res.converged:
            assert res.stopped_by == "monochromatic"
        else:
            assert res.stopped_by == "plurality-fraction"
            assert res.trace.replica(0, "plurality-count")[-1] >= 10_000

    def test_rule_only_truncates_never_perturbs(self):
        cfg = Configuration.biased(10_000, 5, 1_000)
        free = run_process(ThreeMajority(), cfg, rng=7)
        stopped = run_process(
            ThreeMajority(), cfg, rng=7, stopping=PluralityFractionStop(0.6)
        )
        m = stopped.rounds + 1
        assert np.array_equal(
            stopped.trace.replica(0, "plurality-count"),
            free.trace.replica(0, "plurality-count")[:m],
        )
        assert np.array_equal(
            stopped.trace.replica(0, "bias"), free.trace.replica(0, "bias")[:m]
        )

    def test_accepts_serialized_dict(self):
        cfg = Configuration.biased(10_000, 5, 1_000)
        a = run_process(
            ThreeMajority(), cfg, rng=3, stopping={"rule": "bias-threshold", "threshold": 4_000}
        )
        b = run_process(ThreeMajority(), cfg, rng=3, stopping=BiasThresholdStop(4_000))
        assert a.rounds == b.rounds
        assert a.stopped_by == b.stopped_by

    def test_rejects_junk_stopping(self):
        with pytest.raises(TypeError, match="StoppingRule"):
            run_process(ThreeMajority(), Configuration.biased(100, 2, 10), rng=0, stopping=3.5)

    def test_deprecation_shim_matches_new_rule(self):
        cfg = Configuration.biased(20_000, 4, 2_000)
        with pytest.warns(DeprecationWarning, match="stop_at_plurality_fraction"):
            old = run_process(
                ThreeMajority(), cfg, rng=5, stop_at_plurality_fraction=0.5, max_rounds=10_000
            )
        new = run_process(
            ThreeMajority(), cfg, rng=5, stopping=PluralityFractionStop(0.5), max_rounds=10_000
        )
        assert old.rounds == new.rounds
        assert old.stopped_by == new.stopped_by
        assert np.array_equal(old.final_counts, new.final_counts)


class TestRunEnsembleIntegration:
    def test_stopped_by_labels_batched(self):
        cfg = Configuration.biased(20_000, 4, 2_000)
        ens = run_ensemble(
            ThreeMajority(), cfg, 16, rng=0, stopping=PluralityFractionStop(0.5), max_rounds=5_000
        )
        assert ens.stopped_by is not None
        assert set(ens.stop_reasons()) <= {"monochromatic", "plurality-fraction"}
        stopped = ~ens.converged
        assert all(label == "plurality-fraction" for label in ens.stopped_by[stopped])
        # Early-stopped replicas keep their stop round, not the budget.
        assert np.all(ens.rounds[stopped] < 5_000)
        assert ens.final_counts is not None
        assert np.all(ens.final_counts[stopped].max(axis=1) >= 0.5 * 20_000)

    def test_stopped_by_labels_unbatched(self):
        cfg = Configuration.biased(10_000, 3, 1_500)
        ens = run_ensemble(
            ThreeMajority(),
            cfg,
            6,
            rng=1,
            stopping=PluralityFractionStop(0.6),
            max_rounds=2_000,
            batch=False,
        )
        assert ens.stopped_by is not None
        assert set(ens.stop_reasons()) <= {"monochromatic", "plurality-fraction"}

    def test_max_rounds_label_without_rule(self):
        ens = run_ensemble(ThreeMajority(), Configuration.balanced(10_000, 10), 4, rng=0, max_rounds=2)
        assert ens.stop_reasons() == {"max-rounds": 4}

    def test_soft_round_budget_distinct_from_hard_max_rounds(self):
        cfg = Configuration.balanced(10_000, 10)
        soft = run_process(
            ThreeMajority(), cfg, rng=0, stopping=RoundBudgetStop(2), max_rounds=100
        )
        assert soft.stopped_by == "round-budget"
        assert soft.rounds == 2

    def test_no_stopping_matches_pre_rule_behavior(self):
        cfg = Configuration.biased(10_000, 4, 1_200)
        a = run_ensemble(ThreeMajority(), cfg, 8, rng=9)
        b = run_ensemble(ThreeMajority(), cfg, 8, rng=9, stopping=None)
        assert np.array_equal(a.rounds, b.rounds)
        assert np.array_equal(a.winners, b.winners)
        assert np.array_equal(a.final_counts, b.final_counts)


class TestStoppingAtRoundZero:
    """Regression: rules were never evaluated on the initial configuration.

    A rule already satisfied at t=0 used to burn a full round and report
    ``rounds=1``; now both runners check ``stopping.fired`` before stepping.
    """

    #: Initial plurality holds 60% — PluralityFractionStop(0.5) is already met.
    CFG = Configuration.biased(1_000, 3, 600)

    def test_run_process_fires_at_t0(self):
        res = run_process(
            ThreeMajority(), self.CFG, rng=0, stopping=PluralityFractionStop(0.5)
        )
        assert res.rounds == 0
        assert res.stopped_by == "plurality-fraction"
        assert not res.converged
        assert np.array_equal(res.final_counts, self.CFG.counts)
        assert res.trace.n_rounds == 1  # only the t=0 snapshot

    def test_zero_round_budget_fires_at_t0(self):
        res = run_process(
            ThreeMajority(), self.CFG, rng=0, stopping=RoundBudgetStop(0)
        )
        assert res.rounds == 0
        assert res.stopped_by == "round-budget"

    def test_monochromatic_absorption_wins_over_rules_at_t0(self):
        mono = Configuration([0, 50, 0])
        res = run_process(
            ThreeMajority(), mono, rng=0, stopping=PluralityFractionStop(0.1)
        )
        assert res.converged
        assert res.stopped_by == "monochromatic"
        assert res.rounds == 0

    def test_batched_and_unbatched_ensembles_agree_at_t0(self):
        kw = dict(stopping=PluralityFractionStop(0.5), max_rounds=100)
        batched = run_ensemble(ThreeMajority(), self.CFG, 5, rng=0, **kw)
        unbatched = run_ensemble(ThreeMajority(), self.CFG, 5, rng=0, batch=False, **kw)
        for ens in (batched, unbatched):
            assert np.all(ens.rounds == 0)
            assert all(label == "plurality-fraction" for label in ens.stopped_by)
            assert not np.any(ens.converged)
            assert np.array_equal(ens.final_counts, np.tile(self.CFG.counts, (5, 1)))

    def test_rule_not_met_at_t0_still_runs(self):
        res = run_process(
            ThreeMajority(),
            Configuration.biased(10_000, 4, 1_000),
            rng=0,
            stopping=PluralityFractionStop(0.99),
            max_rounds=5_000,
        )
        assert res.rounds > 0
