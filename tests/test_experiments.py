"""Tests for the experiment layer: workloads, results, plots, harness, registry.

Includes the end-to-end integration tests that run every experiment at
smoke scale and assert its headline reproduction criterion.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Configuration, ThreeMajority
from repro.experiments import (
    ALL_EXPERIMENTS,
    ResultTable,
    ascii_plot,
    ensemble_at,
    experiment_ids,
    geometric_tail,
    get_experiment,
    grid,
    lemma8_start,
    lemma10_start,
    paper_biased,
    sweep,
    theorem1_bias,
    theorem2_start,
)
from repro.experiments.e03_polylog import corollary3_config
from repro.experiments.e06_hplurality import theorem4_start
from repro.experiments.e09_landscape import danger_config, gap_config


class TestWorkloads:
    def test_theorem1_bias_shape(self):
        n, k = 100_000, 8
        lam = min(2 * k, (n / math.log(n)) ** (1 / 3))
        expected = round(math.sqrt(2 * lam * n * math.log(n)))
        assert abs(theorem1_bias(n, k) - expected) <= 1

    def test_paper_biased_valid(self):
        cfg = paper_biased(50_000, 12)
        assert cfg.n == 50_000
        assert cfg.bias == theorem1_bias(50_000, 12)

    def test_theorem2_start(self):
        cfg = theorem2_start(90_000, 6, eps=0.25)
        assert cfg.n == 90_000
        imbalance = cfg.plurality_count - 90_000 // 6
        assert 0 < imbalance <= (90_000 / 6) ** 0.75 + 2

    def test_theorem2_rejects_k1(self):
        with pytest.raises(ValueError):
            theorem2_start(100, 1)

    def test_lemma10_default_bias(self):
        cfg = lemma10_start(90_000, 4)
        assert cfg.bias == int(math.sqrt(4 * 90_000) / 6)

    def test_lemma8_structure(self):
        cfg = lemma8_start(9_000, s=100)
        assert cfg.n == 9_000
        assert cfg.counts[0] - cfg.counts[2] == 200

    def test_geometric_tail(self):
        cfg = geometric_tail(10_000, 6, ratio=0.5)
        assert cfg.n == 10_000
        assert cfg.counts[0] > cfg.counts[1] > cfg.counts[2]

    def test_gap_config_properties(self):
        cfg = gap_config(5_000)
        assert cfg.n == 5_000
        assert cfg.monochromatic_distance() < 4.0
        assert cfg.plurality_color == 0

    def test_danger_config_many_colors(self):
        cfg = danger_config(2_500)
        assert cfg.k >= int(math.sqrt(2_500))

    def test_corollary3_config(self):
        cfg = corollary3_config(90_000, 20, 3.0)
        assert cfg.n == 90_000
        assert cfg.plurality_count >= 30_000

    def test_theorem4_start(self):
        cfg = theorem4_start(8_000, 16)
        assert cfg.n == 8_000
        assert cfg.plurality_count == int(3 * 8_000 / (2 * 16))


class TestResultTable:
    def _table(self) -> ResultTable:
        t = ResultTable(title="t", columns=["a", "b"])
        t.add_row(a=1, b=2.5)
        t.add_row(a=3, b=float("nan"))
        return t

    def test_add_row_validates_keys(self):
        t = ResultTable(title="t", columns=["a"])
        with pytest.raises(ValueError):
            t.add_row(b=1)
        with pytest.raises(ValueError):
            t.add_row(a=1, b=2)

    def test_column_access(self):
        assert self._table().column("a") == [1, 3]
        with pytest.raises(KeyError):
            self._table().column("zzz")

    def test_render_contains_data(self):
        text = self._table().render()
        assert "2.5" in text and "nan" in text and "t" in text

    def test_render_formats_bools(self):
        t = ResultTable(title="t", columns=["ok"])
        t.add_row(ok=np.bool_(True))
        t.add_row(ok=False)
        out = t.render()
        assert "yes" in out and "no" in out

    def test_csv_round_trip(self, tmp_path):
        t = self._table()
        path = tmp_path / "out.csv"
        t.write_csv(str(path))
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "2.5" in text

    def test_from_rows(self):
        t = ResultTable.from_rows("x", [{"a": 1}, {"a": 2}])
        assert len(t) == 2
        assert t.columns == ["a"]

    def test_filtered(self):
        t = self._table().filtered(lambda r: r["a"] == 1)
        assert len(t) == 1

    def test_notes_rendered(self):
        t = self._table()
        t.add_note("hello")
        assert "note: hello" in t.render()


class TestAsciiPlot:
    def test_basic_plot(self):
        out = ascii_plot(
            {"lin": ([1, 2, 3], [1, 2, 3])}, width=20, height=5, title="T", xlabel="x", ylabel="y"
        )
        assert "T" in out and "legend" in out and "*" in out

    def test_log_axes(self):
        out = ascii_plot({"s": ([1, 10, 100], [1, 10, 100])}, logx=True, logy=True)
        assert "legend" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": ([0, 1], [1, 2])}, logx=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": ([1, 2], [1])})

    def test_multiple_series_glyphs(self):
        out = ascii_plot({"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])})
        assert "*=a" in out and "o=b" in out


class TestHarness:
    def test_grid(self):
        pts = grid(a=[1, 2], b=["x"])
        assert pts == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_sweep_runs_and_seeds_differ(self):
        dyn = ThreeMajority()

        def build(params):
            return dyn, Configuration.biased(2_000, 3, 400)

        points = sweep(
            [{"i": 0}, {"i": 1}],
            build,
            replicas=4,
            max_rounds=1_000,
            seed=0,
            experiment_id="TEST",
        )
        assert len(points) == 2
        assert all(p.ensemble.convergence_rate == 1.0 for p in points)
        assert points[0].wall_seconds >= 0

    def test_ensemble_at_reproducible(self):
        cfg = Configuration.biased(2_000, 3, 400)
        a = ensemble_at(ThreeMajority(), cfg, replicas=4, max_rounds=1_000, seed=3)
        b = ensemble_at(ThreeMajority(), cfg, replicas=4, max_rounds=1_000, seed=3)
        assert (a.rounds == b.rounds).all()

    def test_spec_rejects_unknown_scale(self):
        spec = get_experiment("E1")
        with pytest.raises(ValueError):
            spec(scale="huge")


class TestRegistry:
    def test_all_thirteen_registered(self):
        assert experiment_ids() == [f"E{i}" for i in range(1, 14)]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e2").id == "E2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_specs_have_claims(self):
        for spec in ALL_EXPERIMENTS.values():
            assert spec.claim
            assert spec.title


@pytest.mark.slow
class TestExperimentIntegration:
    """Run every experiment at smoke scale and check its headline criterion."""

    def test_e1_drift(self):
        t = get_experiment("E1")(scale="smoke", seed=1)
        assert len(t) > 0
        assert all(row["drift_ok"] for row in t.rows)
        assert all(row["max_dev_stderr"] < 6 for row in t.rows)

    def test_e2_upper_bound(self):
        t = get_experiment("E2")(scale="smoke", seed=1)
        assert all(row["win_rate"] == 1.0 for row in t.rows)
        # Upper bound: measured/predicted stays below a modest constant.
        assert all(row["ratio"] < 2.0 for row in t.rows)

    def test_e3_polylog(self):
        t = get_experiment("E3")(scale="smoke", seed=1)
        assert all(row["win_rate"] == 1.0 for row in t.rows)
        assert all(row["rounds_per_logn"] < 5.0 for row in t.rows)

    def test_e4_lower_bound(self):
        t = get_experiment("E4")(scale="smoke", seed=1)
        ks = [row["k"] for row in t.rows]
        doubling = [row["median_doubling_rounds"] for row in t.rows]
        consensus = [row["median_consensus_rounds"] for row in t.rows]
        # Monotone growth in k is the lower bound's empirical signature.
        assert doubling == sorted(doubling)
        assert consensus[-1] > consensus[0]
        assert ks == sorted(ks)

    def test_e5_uniqueness(self):
        t = get_experiment("E5")(scale="smoke", seed=1)
        for row in t.rows:
            if row["in_M3"]:
                assert row["win_rate"] >= 0.9, row
            else:
                # Theorem 3: failure probability > 1/4.
                assert row["win_rate"] <= 0.75, row

    def test_e6_hplurality(self):
        t = get_experiment("E6")(scale="smoke", seed=1)
        rounds = [row["median_rounds"] for row in t.rows]
        assert rounds == sorted(rounds, reverse=True)  # larger h is faster
        assert all(row["win_rate"] >= 0.5 for row in t.rows)
        # The Ω(k/h²) floor: normalised time bounded away from zero.
        assert all(row["rounds_x_h2_over_k"] > 0.5 for row in t.rows)

    def test_e7_bias_tightness(self):
        t = get_experiment("E7")(scale="smoke", seed=1)
        floor = 1 / (16 * math.e)
        for row in t.rows:
            if row["alpha"] <= 1.0:
                assert row["ci_low"] >= floor, row

    def test_e8_adversary(self):
        t = get_experiment("E8")(scale="smoke", seed=1)
        small_f = [r for r in t.rows if r["F_over_s_lambda"] <= 0.2]
        assert all(r["plurality_survived_rate"] == 1.0 for r in small_f)
        assert all(r["held_window_rate"] == 1.0 for r in small_f)

    def test_e9_landscape(self):
        t = get_experiment("E9")(scale="smoke", seed=1)
        panels = {row["panel"] for row in t.rows}
        assert panels == {"a-voter", "b-two-choices", "c-gap", "d-danger"}
        voter = [r for r in t.rows if r["panel"] == "a-voter"][0]
        assert 0.2 < voter["value"] < 0.6  # constant minority-win rate
        danger = {r["dynamics"]: r["value"] for r in t.rows if r["panel"] == "d-danger"}
        # Undecided-state loses the plurality in one round at constant
        # rate; 3-majority essentially never does.
        assert danger["undecided"] > 0.05
        assert danger["3-majority"] < 0.05

    def test_e10_phases(self):
        t = get_experiment("E10")(scale="smoke", seed=1)
        by_phase = {row["phase"]: row for row in t.rows}
        p1 = by_phase["plurality-to-majority"]
        assert p1["mean_growth_factor"] > 1.0
        p2 = by_phase["majority-to-almost-all"]
        assert p2["mean_decay_ratio"] < 8 / 9
        p3 = by_phase["last-step"]
        assert p3["mean_rounds"] <= 3.0

    def test_e11_crossmodel(self):
        t = get_experiment("E11")(scale="smoke", seed=1)
        voter = {r["model"]: r for r in t.rows if r["panel"] == "a-voter"}
        # Both models fail at roughly the martingale rate (far from 1.0).
        assert voter["sequential"]["plurality_win_rate"] < 0.95
        assert voter["parallel"]["plurality_win_rate"] < 0.95
        und = {r["model"]: r for r in t.rows if r["panel"] == "b-undecided"}
        assert und["sequential"]["plurality_win_rate"] >= 0.9
        assert und["parallel"]["plurality_win_rate"] >= 0.9
        # tick/n time within an order of magnitude of parallel rounds.
        ratio = und["sequential"]["median_parallel_rounds"] / max(
            und["parallel"]["median_parallel_rounds"], 1e-9
        )
        assert 0.1 < ratio < 10.0

    def test_e12_meanfield(self):
        t = get_experiment("E12")(scale="smoke", seed=1)
        rows = sorted(t.rows, key=lambda r: r["bias_over_sqrt_n"])
        # Below/at the fluctuation scale the stochastic process fails often
        # while the mean field (for s > 0) already declares victory.
        assert rows[0]["stochastic_win_rate"] < 0.5
        mid = [r for r in rows if 0 < r["bias_over_sqrt_n"] <= 1]
        assert all(r["meanfield_verdict"] == "plurality wins" for r in mid)
        assert all(r["stochastic_win_rate"] < 0.95 for r in mid)
        # Far above the scale the ODE becomes faithful.
        assert rows[-1]["stochastic_win_rate"] >= 0.95
        assert rows[-1]["ode_is_faithful"]

    def test_e13_topology(self):
        t = get_experiment("E13")(scale="smoke", seed=1)
        by_topo = {row["topology"]: row for row in t.rows}
        assert set(by_topo) == {
            "clique", "random-regular", "torus", "erdos-renyi", "barbell",
        }
        # Well-mixing topologies all reach consensus...
        for name in ("clique", "random-regular", "erdos-renyi", "torus"):
            assert by_topo[name]["convergence_rate"] >= 0.8, by_topo[name]
        # ...the torus pays its diameter relative to the clique...
        assert by_topo["torus"]["median_rounds"] > 2 * by_topo["clique"]["median_rounds"]
        # ...and the barbell bottleneck stalls the dynamics.
        assert by_topo["barbell"]["convergence_rate"] <= 0.5
