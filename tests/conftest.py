"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: deterministic, CI-friendly.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng_factory():
    """Factory for independently seeded generators inside one test."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
