"""Exact Markov-chain cross-validation of every dynamics engine.

These are the strongest correctness tests in the suite: the exact chain
(built from each dynamics' closed-form laws) is compared against empirical
simulation frequencies, and against theory identities the paper relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    MedianDynamics,
    ThreeMajority,
    TwoChoices,
    UndecidedState,
    Voter,
    majority_rule,
    run_ensemble,
)
from repro.analysis.markov import analyze, enumerate_configurations, transition_matrix


class TestEnumeration:
    def test_counts(self):
        assert len(enumerate_configurations(4, 2)) == 5
        assert len(enumerate_configurations(5, 3)) == 21  # C(7,2)

    def test_all_sum_to_n(self):
        for state in enumerate_configurations(6, 3):
            assert sum(state) == 6

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            enumerate_configurations(-1, 2)
        with pytest.raises(ValueError):
            enumerate_configurations(3, 0)


class TestTransitionMatrices:
    @pytest.mark.parametrize(
        "dynamics",
        [ThreeMajority(), Voter(), MedianDynamics(), TwoChoices(), majority_rule()],
        ids=lambda d: d.name,
    )
    def test_rows_are_distributions(self, dynamics):
        P, states = transition_matrix(dynamics, 5, 3)
        assert P.shape == (len(states), len(states))
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_monochromatic_rows_are_absorbing(self):
        P, states = transition_matrix(ThreeMajority(), 5, 2)
        for i, s in enumerate(states):
            if max(s) == 5:
                assert P[i, i] == pytest.approx(1.0)

    def test_majority_rule_matches_three_majority(self):
        # The D3 majority member and the Lemma 1 engine must induce the
        # same chain.
        P1, _ = transition_matrix(ThreeMajority(), 5, 3)
        P2, _ = transition_matrix(majority_rule(), 5, 3)
        assert np.allclose(P1, P2, atol=1e-12)

    def test_undecided_state_chain(self):
        P, states = transition_matrix(UndecidedState(), 4, 3)
        assert np.allclose(P.sum(axis=1), 1.0)


class TestExactIdentities:
    def test_voter_win_probability_is_martingale(self):
        ma = analyze(Voter(), 6, 2)
        for c0 in range(1, 6):
            assert ma.win_probability((c0, 6 - c0), 0) == pytest.approx(c0 / 6)

    def test_three_majority_symmetry(self):
        ma = analyze(ThreeMajority(), 6, 2)
        p = ma.win_probability((3, 3), 0)
        assert p == pytest.approx(0.5)

    def test_color_permutation_equivariance(self):
        ma = analyze(ThreeMajority(), 6, 3)
        assert ma.win_probability((3, 2, 1), 0) == pytest.approx(
            ma.win_probability((1, 2, 3), 2)
        )

    def test_bias_monotonicity_of_win_probability(self):
        ma = analyze(ThreeMajority(), 8, 2)
        probs = [ma.win_probability((c0, 8 - c0), 0) for c0 in range(1, 8)]
        assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_median_beats_plurality_at_median_color(self):
        # The exact-chain version of Theorem 3's median counterexample.
        ma = analyze(MedianDynamics(), 5, 3)
        start = (2, 2, 1)  # plurality tied 0/1; median value is 1-ish
        # Clear case: (2,1,2): color 1 is the median though it is the minority.
        p_med = ma.win_probability((2, 1, 2), 1)
        p_0 = ma.win_probability((2, 1, 2), 0)
        assert p_med > p_0

    def test_expected_rounds_positive_from_transient(self):
        ma = analyze(ThreeMajority(), 5, 2)
        assert ma.expected_rounds((3, 2)) > 0
        assert ma.expected_rounds((5, 0)) == 0

    def test_win_probabilities_sum_to_one(self):
        ma = analyze(ThreeMajority(), 6, 3)
        total = sum(ma.win_probability((2, 2, 2), j) for j in range(3))
        # All-undecided style dead ends don't exist for 3-majority.
        assert total == pytest.approx(1.0)


class TestSimulatorAgreement:
    """Empirical frequencies must match the exact chain."""

    @pytest.mark.parametrize(
        "dynamics,start",
        [
            (ThreeMajority(), (4, 2)),
            (Voter(), (4, 2)),
            (MedianDynamics(), (3, 2, 1)),
            (TwoChoices(), (4, 2)),
        ],
        ids=["3maj", "voter", "median", "2choices"],
    )
    def test_one_round_distribution(self, dynamics, start, rng):
        k = len(start)
        n = sum(start)
        P, states = transition_matrix(dynamics, n, k)
        index = {s: i for i, s in enumerate(states)}
        row = P[index[start]]
        reps = 30_000
        hits = np.zeros(len(states))
        batch = np.tile(np.array(start), (reps, 1))
        out = dynamics.step_many(batch, rng)
        for outcome in out:
            hits[index[tuple(outcome)]] += 1
        freq = hits / reps
        # Chi-square-ish check: max deviation within 5 binomial stderrs.
        stderr = np.sqrt(np.maximum(row * (1 - row), 1e-12) / reps)
        assert np.max(np.abs(freq - row) / np.maximum(stderr, 1e-9)) < 6.0

    def test_absorption_probability_vs_ensemble(self, rng):
        ma = analyze(ThreeMajority(), 8, 2)
        exact = ma.win_probability((5, 3), 0)
        ens = run_ensemble(ThreeMajority(), Configuration([5, 3]), 4_000, max_rounds=10_000, rng=rng)
        assert ens.convergence_rate == 1.0
        stderr = np.sqrt(exact * (1 - exact) / 4_000)
        assert abs(ens.plurality_win_rate - exact) < 5 * stderr

    def test_expected_rounds_vs_ensemble(self, rng):
        ma = analyze(ThreeMajority(), 8, 2)
        exact = ma.expected_rounds((4, 4))
        ens = run_ensemble(ThreeMajority(), Configuration([4, 4]), 4_000, max_rounds=10_000, rng=rng)
        mean = float(ens.rounds[ens.converged].mean())
        assert abs(mean - exact) / exact < 0.1

    def test_undecided_absorption_vs_ensemble(self, rng):
        ma = analyze(UndecidedState(), 6, 3)  # 2 colors + undecided
        exact = ma.win_probability((4, 2, 0), 0)
        ens = run_ensemble(
            UndecidedState(), Configuration([4, 2]), 4_000, max_rounds=10_000, rng=rng
        )
        # The undecided chain can also absorb at all-undecided; winners == 0
        # measures color-0 consensus only.
        rate = float(((ens.winners == 0) & ens.converged).mean())
        stderr = np.sqrt(exact * (1 - exact) / 4_000)
        assert abs(rate - exact) < 6 * stderr
