"""Tests for trajectory analysis (distance.py) and scaling fits (fitting.py)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.distance import (
    PHASE_DONE,
    PHASE_LAST_STEP,
    PHASE_MAJORITY,
    PHASE_PLURALITY,
    bias_series,
    classify_phase,
    monochromatic_distance,
    phase_segments,
    total_variation,
)
from repro.analysis.fitting import (
    bootstrap_ci,
    linear_fit_through_predictor,
    power_law_fit,
    wilson_interval,
)


class TestDistances:
    def test_md_extremes(self):
        assert monochromatic_distance(np.array([10, 0, 0])) == pytest.approx(1.0)
        assert monochromatic_distance(np.array([4, 4, 4])) == pytest.approx(3.0)

    def test_md_rejects_empty(self):
        with pytest.raises(ValueError):
            monochromatic_distance(np.array([0, 0]))

    def test_tv_identical(self):
        assert total_variation(np.array([3, 2]), np.array([6, 4])) == pytest.approx(0.0)

    def test_tv_disjoint(self):
        assert total_variation(np.array([5, 0]), np.array([0, 5])) == pytest.approx(1.0)

    def test_tv_rejects_mismatched(self):
        with pytest.raises(ValueError):
            total_variation(np.array([1, 1]), np.array([1, 1, 1]))

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=6).filter(
            lambda xs: sum(xs) > 0
        )
    )
    def test_tv_bounds(self, counts):
        a = np.array(counts)
        b = np.roll(a, 1)
        if b.sum() == 0:
            return
        tv = total_variation(a, b)
        assert 0.0 <= tv <= 1.0


class TestBiasSeries:
    def test_matches_configuration_bias(self):
        traj = np.array([[5, 3, 2], [8, 1, 1], [10, 0, 0]])
        assert bias_series(traj).tolist() == [2, 7, 10]

    def test_single_color(self):
        assert bias_series(np.array([[5], [5]])).tolist() == [5, 5]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            bias_series(np.array([1, 2, 3]))


class TestPhases:
    def test_classification(self):
        n = 10_000
        assert classify_phase(np.array([n, 0])) == PHASE_DONE
        assert classify_phase(np.array([n // 2, n // 2])) == PHASE_PLURALITY
        assert classify_phase(np.array([3 * n // 4, n // 4])) == PHASE_MAJORITY
        assert classify_phase(np.array([n - 3, 3])) == PHASE_LAST_STEP

    def test_classify_rejects_empty(self):
        with pytest.raises(ValueError):
            classify_phase(np.array([0, 0]))

    def test_segments_ordered_and_cover(self):
        n = 9_000
        traj = np.array(
            [
                [n // 3, n // 3, n // 3],
                [n // 2, n // 4, n // 4],
                [3 * n // 4, n // 8, n // 8],
                [n - 2, 1, 1],
                [n, 0, 0],
            ]
        )
        segs = phase_segments(traj)
        assert [s.phase for s in segs] == [
            PHASE_PLURALITY,
            PHASE_MAJORITY,
            PHASE_LAST_STEP,
            PHASE_DONE,
        ]
        assert sum(s.length for s in segs) == traj.shape[0]
        assert segs[0].start_round == 0
        assert segs[-1].end_round == 4

    def test_segments_merge_consecutive(self):
        traj = np.array([[5, 5], [5, 5], [6, 4]])
        segs = phase_segments(traj)
        assert len(segs) == 1
        assert segs[0].length == 3

    def test_rejects_empty_trajectory(self):
        with pytest.raises(ValueError):
            phase_segments(np.zeros((0, 2)))


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        x = np.array([1, 2, 4, 8, 16], dtype=float)
        y = 3.0 * x**2
        fit = power_law_fit(x, y)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self, rng):
        x = np.logspace(0, 3, 20)
        y = 5 * x**1.5 * np.exp(rng.normal(0, 0.05, 20))
        fit = power_law_fit(x, y)
        lo, hi = fit.exponent_ci()
        assert lo < 1.5 < hi

    def test_predict(self):
        fit = power_law_fit(np.array([1.0, 2, 4]), np.array([2.0, 4, 8]))
        assert fit.predict(np.array([8.0]))[0] == pytest.approx(16.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            power_law_fit(np.array([1.0, 2, 3]), np.array([1.0, -2, 3]))

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            power_law_fit(np.array([1.0, 2]), np.array([1.0, 2]))


class TestLinearFit:
    def test_exact(self):
        p = np.array([1.0, 2, 3])
        fit = linear_fit_through_predictor(p, 4 * p)
        assert fit.coefficient == pytest.approx(4.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_rejects_zero_predictor(self):
        with pytest.raises(ValueError):
            linear_fit_through_predictor(np.zeros(3), np.ones(3))

    def test_predict(self):
        fit = linear_fit_through_predictor(np.array([1.0, 2]), np.array([3.0, 6]))
        assert fit.predict(np.array([10.0]))[0] == pytest.approx(30.0)


class TestIntervalEstimates:
    def test_bootstrap_contains_truth(self, rng):
        data = rng.normal(10, 1, size=400)
        lo, hi = bootstrap_ci(data, statistic=np.mean, rng=rng)
        assert lo < 10.2 and hi > 9.8
        assert lo < hi

    def test_bootstrap_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))

    def test_wilson_basic(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_extremes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        lo2, hi2 = wilson_interval(50, 50)
        assert hi2 == 1.0

    def test_wilson_rejects_bad(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(7, 5)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=200))
    def test_wilson_property(self, s, t):
        if s > t:
            return
        lo, hi = wilson_interval(s, t)
        assert 0.0 <= lo <= s / t <= hi <= 1.0
