"""Tests for F-bounded adversaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    BalancingAdversary,
    Configuration,
    RandomAdversary,
    ReviveAdversary,
    TargetedAdversary,
    ThreeMajority,
    run_process,
)
from repro.core.adversary import Adversary


class TestContract:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            TargetedAdversary(-1)

    def test_cheating_adversary_is_caught(self, rng):
        class Cheater(Adversary):
            def _act(self, counts, rng):
                counts[0] += 100  # creates agents
                return counts

        with pytest.raises(RuntimeError, match="number of agents"):
            Cheater(5).corrupt(np.array([10, 10]), rng)

    def test_over_budget_is_caught(self, rng):
        class OverBudget(Adversary):
            def _act(self, counts, rng):
                counts[0] -= 10
                counts[1] += 10
                return counts

        with pytest.raises(RuntimeError, match="budget"):
            OverBudget(5).corrupt(np.array([20, 0]), rng)

    def test_negative_counts_are_caught(self, rng):
        class Negative(Adversary):
            def _act(self, counts, rng):
                counts[0] -= counts[0] + 1
                counts[1] += counts[0] + 1
                return counts

        with pytest.raises(RuntimeError):
            Negative(100).corrupt(np.array([3, 3]), rng)


class TestTargeted:
    def test_moves_plurality_to_runner_up(self, rng):
        out = TargetedAdversary(5).corrupt(np.array([50, 30, 20]), rng)
        assert out.tolist() == [45, 35, 20]

    def test_budget_capped_by_plurality(self, rng):
        out = TargetedAdversary(100).corrupt(np.array([3, 2, 1]), rng)
        assert out.sum() == 6
        assert out[0] == 0

    def test_reduces_bias_by_2f(self, rng):
        before = Configuration([50, 30, 20])
        after = Configuration(TargetedAdversary(5).corrupt(before.counts, rng))
        assert after.bias == before.bias - 10


class TestBalancing:
    def test_levels_top_two(self, rng):
        out = BalancingAdversary(100).corrupt(np.array([60, 20, 20]), rng)
        assert max(out) - min(out) <= 1

    def test_respects_budget(self, rng):
        before = np.array([80, 10, 10])
        out = BalancingAdversary(5).corrupt(before, rng)
        assert np.abs(out - before).sum() // 2 <= 5

    def test_noop_when_already_flat(self, rng):
        out = BalancingAdversary(10).corrupt(np.array([5, 5, 5]), rng)
        assert out.tolist() == [5, 5, 5]

    # -- regression: plain argmin fed dead colors ([10, 6, 0] -> [5, 6, 5]) --

    def test_never_resurrects_dead_colors(self, rng):
        out = BalancingAdversary(5).corrupt(np.array([10, 6, 0]), rng)
        assert out.tolist() == [8, 8, 0]

    def test_levels_among_supported_only(self, rng):
        out = BalancingAdversary(100).corrupt(np.array([60, 0, 20, 0, 20]), rng)
        assert out[[1, 3]].tolist() == [0, 0]
        supported = out[[0, 2, 4]]
        assert supported.max() - supported.min() <= 1

    def test_single_supported_color_is_noop(self, rng):
        out = BalancingAdversary(10).corrupt(np.array([7, 0, 0]), rng)
        assert out.tolist() == [7, 0, 0]

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=200), min_size=3, max_size=5).filter(
                lambda xs: sum(xs) > 0
            ),
            min_size=1,
            max_size=6,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
        st.integers(min_value=0, max_value=80),
    )
    def test_batched_balancing_matches_per_row(self, rows, budget):
        adv = BalancingAdversary(budget)
        rng = np.random.default_rng(3)
        batch = np.array(rows, dtype=np.int64)
        many = adv._act_many(batch.copy(), rng)
        single = np.stack([adv._act(row.copy(), rng) for row in batch])
        assert np.array_equal(many, single)
        # Dead colors stay dead, row by row.
        assert not np.any((batch == 0) & (many > 0))


class TestRandomAndRevive:
    def test_random_preserves_mass(self, rng):
        out = RandomAdversary(20).corrupt(np.array([50, 30, 20]), rng)
        assert out.sum() == 100

    def test_random_zero_budget_is_noop(self, rng):
        out = RandomAdversary(0).corrupt(np.array([5, 5]), rng)
        assert out.tolist() == [5, 5]

    def test_revive_feeds_weakest(self, rng):
        out = ReviveAdversary(4).corrupt(np.array([90, 10, 0]), rng)
        assert out.tolist() == [86, 10, 4]

    def test_revive_noop_on_flat(self, rng):
        out = ReviveAdversary(4).corrupt(np.array([5, 5]), rng)
        assert out.sum() == 10


class TestWithProcess:
    def test_small_f_does_not_stop_plurality(self):
        cfg = Configuration.biased(20_000, 4, 3_000)
        res = run_process(
            ThreeMajority(),
            cfg,
            adversary=TargetedAdversary(5),
            max_rounds=500,
            rng=0,
        )
        # Consensus is impossible (adversary keeps flipping 5 agents), but
        # the plurality must dominate all but O(F)-ish agents.
        final = res.final_counts
        assert np.argmax(final) == res.plurality_color
        assert final.max() >= 20_000 - 100

    def test_huge_f_destroys_bias(self):
        cfg = Configuration.biased(2_000, 4, 100)
        res = run_process(
            ThreeMajority(),
            cfg,
            adversary=TargetedAdversary(500),
            max_rounds=50,
            rng=0,
        )
        assert not res.converged


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=6).filter(
        lambda xs: sum(xs) > 0
    ),
    st.integers(min_value=0, max_value=50),
)
def test_all_adversaries_respect_contract(counts, budget):
    rng = np.random.default_rng(9)
    counts = np.array(counts)
    for adv in (
        TargetedAdversary(budget),
        BalancingAdversary(budget),
        RandomAdversary(budget),
        ReviveAdversary(budget),
    ):
        out = adv.corrupt(counts, rng)  # corrupt() itself enforces the contract
        assert out.sum() == counts.sum()
        assert (out >= 0).all()
