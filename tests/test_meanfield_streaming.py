"""Tests for the mean-field ODE module and the streaming statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MedianDynamics, ThreeMajority, Voter
from repro.analysis import (
    StreamingMoments,
    StreamingQuantiles,
    discrete_mean_field,
    integrate_mean_field,
    mean_field_drift,
)
from repro.analysis.expectations import expected_next_counts


class TestDiscreteMeanField:
    def test_matches_lemma1_iteration(self):
        f0 = np.array([0.5, 0.3, 0.2])
        res = discrete_mean_field(ThreeMajority(), f0, rounds=1)
        expected = expected_next_counts(f0 * 1_000_000) / 1_000_000
        assert np.allclose(res.final, expected, atol=1e-5)

    def test_converges_to_plurality(self):
        res = discrete_mean_field(ThreeMajority(), np.array([0.4, 0.35, 0.25]), rounds=80)
        assert res.winner(atol=1e-3) == 0

    def test_voter_is_stationary(self):
        # The voter law is the identity in the mean field: no drift at all.
        f0 = np.array([0.6, 0.4])
        res = discrete_mean_field(Voter(), f0, rounds=10)
        assert np.allclose(res.final, f0, atol=1e-5)

    def test_median_mean_field_elects_median(self):
        res = discrete_mean_field(MedianDynamics(), np.array([0.40, 0.33, 0.27]), rounds=200)
        assert res.winner(atol=1e-2) == 1

    def test_rounds_to_fraction(self):
        res = discrete_mean_field(ThreeMajority(), np.array([0.4, 0.35, 0.25]), rounds=80)
        t = res.rounds_to_fraction(0.9)
        assert t is not None and 0 < t <= 80
        assert res.rounds_to_fraction(2.0) is None

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValueError):
            discrete_mean_field(ThreeMajority(), np.array([0.5, 0.5]), rounds=-1)


class TestContinuousMeanField:
    def test_drift_is_zero_at_consensus(self):
        drift = mean_field_drift(ThreeMajority())
        d = drift(0.0, np.array([1.0, 0.0]))
        assert np.allclose(d, 0.0, atol=1e-6)

    def test_integration_reaches_plurality(self):
        res = integrate_mean_field(ThreeMajority(), np.array([0.45, 0.35, 0.2]), t_max=60.0)
        assert res.winner(atol=1e-2) == 0
        assert res.times[-1] == pytest.approx(60.0)
        # fractions stay a probability vector along the way
        assert np.allclose(res.fractions.sum(axis=1), 1.0, atol=1e-6)

    def test_tie_is_a_fixed_point(self):
        res = integrate_mean_field(ThreeMajority(), np.array([0.5, 0.5]), t_max=5.0)
        assert np.allclose(res.final, [0.5, 0.5], atol=1e-4)

    def test_rejects_bad_tmax(self):
        with pytest.raises(ValueError):
            integrate_mean_field(ThreeMajority(), np.array([0.5, 0.5]), t_max=0.0)

    def test_mean_field_matches_large_n_simulation(self, rng):
        # At n = 10^6 fluctuations are ~10^-3: the ODE should track the
        # stochastic trajectory closely for a few rounds.
        from repro import Configuration, run_process

        n = 1_000_000
        cfg = Configuration.from_fractions(n, [0.45, 0.35, 0.20])
        sim = run_process(ThreeMajority(), cfg, rng=rng, max_rounds=5, record=["counts"])
        mf = discrete_mean_field(ThreeMajority(), np.array([0.45, 0.35, 0.20]), rounds=5)
        sim_frac = sim.trace.replica(0, "counts") / n
        # Fluctuations (~n^-1/2 per round) compound through the drift's
        # sensitivity; a 2e-2 envelope over 5 rounds is the CLT scale.
        assert np.allclose(sim_frac[:6], mf.fractions[: sim_frac[:6].shape[0]], atol=2e-2)


class TestStreamingMoments:
    def test_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, size=(500, 4))
        acc = StreamingMoments(4)
        for row in data:
            acc.push(row)
        assert np.allclose(acc.mean, data.mean(axis=0))
        assert np.allclose(acc.variance(), data.var(axis=0, ddof=1))

    def test_batch_equals_scalar_pushes(self, rng):
        data = rng.random((200, 3))
        a = StreamingMoments(3)
        b = StreamingMoments(3)
        for row in data:
            a.push(row)
        b.push_batch(data)
        assert np.allclose(a.mean, b.mean)
        assert np.allclose(a.variance(), b.variance())

    def test_merge_order_independent(self, rng):
        x = rng.random((100, 2))
        y = rng.random((50, 2))
        m1 = StreamingMoments(2)
        m1.push_batch(x)
        m2 = StreamingMoments(2)
        m2.push_batch(y)
        m1.merge(m2)
        ref = StreamingMoments(2)
        ref.push_batch(np.vstack([x, y]))
        assert np.allclose(m1.mean, ref.mean)
        assert np.allclose(m1.variance(), ref.variance())

    def test_merge_into_empty(self, rng):
        src = StreamingMoments(2)
        src.push_batch(rng.random((10, 2)))
        dst = StreamingMoments(2)
        dst.merge(src)
        assert dst.count == 10

    def test_validation(self):
        acc = StreamingMoments(2)
        with pytest.raises(ValueError):
            acc.push(np.zeros(3))
        with pytest.raises(ValueError):
            acc.mean  # noqa: B018 — no observations yet
        with pytest.raises(ValueError):
            StreamingMoments(0)

    def test_stderr_shrinks(self, rng):
        acc = StreamingMoments(1)
        acc.push_batch(rng.normal(size=(100, 1)))
        early = acc.stderr()[0]
        acc.push_batch(rng.normal(size=(10_000, 1)))
        assert acc.stderr()[0] < early


class TestStreamingQuantiles:
    def test_exact_below_capacity(self):
        sk = StreamingQuantiles(capacity=100, rng=0)
        sk.push_batch(np.arange(50, dtype=float))
        assert sk.median() == pytest.approx(24.5)
        assert sk.seen == 50

    def test_approximate_above_capacity(self, rng):
        sk = StreamingQuantiles(capacity=2000, rng=0)
        data = rng.normal(0, 1, size=20_000)
        sk.push_batch(data)
        assert abs(sk.median() - np.median(data)) < 0.1
        assert abs(sk.quantile(0.9) - np.quantile(data, 0.9)) < 0.15

    def test_validation(self):
        sk = StreamingQuantiles(capacity=10)
        with pytest.raises(ValueError):
            sk.median()
        sk.push(1.0)
        with pytest.raises(ValueError):
            sk.quantile(1.5)
        with pytest.raises(ValueError):
            StreamingQuantiles(capacity=0)
