"""Tests for the vectorized sampling kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.samplers import (
    categorical_matrix,
    categorical_sample,
    multinomial_step,
    multinomial_step_batch,
    row_counts_dense,
    row_plurality,
    top_two,
)


class TestMultinomialStep:
    def test_conserves_mass(self, rng):
        out = multinomial_step(1000, np.array([0.5, 0.3, 0.2]), rng)
        assert out.sum() == 1000
        assert out.dtype == np.int64

    def test_rejects_bad_pvals(self, rng):
        with pytest.raises(ValueError, match="probability"):
            multinomial_step(10, np.array([0.5, 0.6]), rng)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            multinomial_step(10, np.full((2, 2), 0.25), rng)

    def test_tolerates_tiny_roundoff(self, rng):
        p = np.array([1 / 3, 1 / 3, 1 / 3])
        out = multinomial_step(99, p, rng)
        assert out.sum() == 99

    def test_degenerate_law(self, rng):
        out = multinomial_step(50, np.array([0.0, 1.0]), rng)
        assert out.tolist() == [0, 50]

    def test_mean_matches_law(self, rng):
        p = np.array([0.7, 0.2, 0.1])
        draws = np.stack([multinomial_step(100, p, rng) for _ in range(2000)])
        assert np.allclose(draws.mean(axis=0) / 100, p, atol=0.01)


class TestMultinomialStepBatch:
    def test_scalar_total(self, rng):
        p = np.array([[0.5, 0.5], [0.9, 0.1], [0.0, 1.0]])
        out = multinomial_step_batch(100, p, rng)
        assert out.shape == (3, 2)
        assert (out.sum(axis=1) == 100).all()
        assert out[2].tolist() == [0, 100]

    def test_vector_totals(self, rng):
        p = np.array([[0.5, 0.5], [0.25, 0.75]])
        out = multinomial_step_batch(np.array([10, 20]), p, rng)
        assert out.sum(axis=1).tolist() == [10, 20]

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            multinomial_step_batch(10, np.array([0.5, 0.5]), rng)

    def test_rejects_bad_rows(self, rng):
        with pytest.raises(ValueError, match="probability"):
            multinomial_step_batch(10, np.array([[0.5, 0.2]]), rng)


class TestCategoricalSample:
    def test_range_and_shape(self, rng):
        out = categorical_sample(np.array([5, 0, 5]), (100,), rng)
        assert out.shape == (100,)
        assert set(np.unique(out)) <= {0, 2}

    def test_never_samples_zero_count_color(self, rng):
        out = categorical_sample(np.array([0, 10, 0]), 1000, rng)
        assert (out == 1).all()

    def test_frequencies(self, rng):
        counts = np.array([700, 200, 100])
        out = categorical_sample(counts, 200_000, rng)
        freqs = np.bincount(out, minlength=3) / 200_000
        assert np.allclose(freqs, counts / 1000, atol=0.01)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError, match="positive total"):
            categorical_sample(np.array([0, 0]), 10, rng)

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            categorical_sample(np.array([-1, 2]), 10, rng)

    def test_matrix_shape(self, rng):
        out = categorical_matrix(np.array([1, 1]), 7, 3, rng)
        assert out.shape == (7, 3)

    def test_matrix_rejects_bad_h(self, rng):
        with pytest.raises(ValueError):
            categorical_matrix(np.array([1, 1]), 7, 0, rng)


class TestRowCounts:
    def test_counts_match_manual(self):
        samples = np.array([[0, 0, 1], [2, 2, 2]])
        counts = row_counts_dense(samples, 3)
        assert counts.tolist() == [[2, 1, 0], [0, 0, 3]]

    def test_empty_rows(self):
        assert row_counts_dense(np.zeros((0, 3), dtype=np.int64), 4).shape == (0, 4)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            row_counts_dense(np.array([1, 2]), 3)


class TestRowPlurality:
    def test_clear_majorities(self, rng):
        samples = np.array([[0, 0, 1], [2, 1, 2], [1, 1, 1]])
        out = row_plurality(samples, 3, rng)
        assert out.tolist() == [0, 2, 1]

    def test_h1_identity(self, rng):
        samples = np.array([[2], [0], [1]])
        assert row_plurality(samples, 3, rng).tolist() == [2, 0, 1]

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            row_plurality(np.array([[0, 5]]), 3, rng)

    def test_tie_break_uniform(self, rng):
        # 3 distinct colors: each should win ~1/3 of the time.
        samples = np.tile(np.array([[0, 1, 2]]), (30_000, 1))
        out = row_plurality(samples, 3, rng)
        freqs = np.bincount(out, minlength=3) / 30_000
        assert np.allclose(freqs, 1 / 3, atol=0.02)

    def test_two_way_tie_uniform(self, rng):
        samples = np.tile(np.array([[0, 0, 1, 1]]), (30_000, 1))
        out = row_plurality(samples, 2, rng)
        freq0 = (out == 0).mean()
        assert abs(freq0 - 0.5) < 0.02

    def test_chunked_path_matches(self, rng_factory):
        # Force chunking by monkeypatching the block budget.
        import repro.core.samplers as smp

        samples = rng_factory(1).integers(0, 4, size=(101, 5))
        old = smp._DENSE_BLOCK_CELLS
        try:
            smp._DENSE_BLOCK_CELLS = 40  # chunk = 10 rows
            out_chunked = row_plurality(samples, 4, rng_factory(2))
        finally:
            smp._DENSE_BLOCK_CELLS = old
        out_whole = row_plurality(samples, 4, rng_factory(2))
        # Tie-broken rows may differ; rows with a unique plurality must agree.
        counts = row_counts_dense(samples, 4)
        top = counts.max(axis=1)
        unique = (counts == top[:, None]).sum(axis=1) == 1
        assert (out_chunked[unique] == out_whole[unique]).all()


# -- property-based -----------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=6).filter(
        lambda xs: sum(xs) > 0
    ),
    st.integers(min_value=1, max_value=7),
)
def test_row_plurality_winner_always_present(counts, h):
    rng = np.random.default_rng(42)
    samples = categorical_matrix(np.array(counts), 50, h, rng)
    winners = row_plurality(samples, len(counts), rng)
    # Each winner must occur in its own row (f(x) ∈ {x} requirement).
    present = (samples == winners[:, None]).any(axis=1)
    assert present.all()


@given(st.integers(min_value=1, max_value=300))
def test_multinomial_step_mass(total):
    rng = np.random.default_rng(7)
    out = multinomial_step(total, np.array([0.2, 0.3, 0.5]), rng)
    assert out.sum() == total
    assert (out >= 0).all()


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12))
def test_top_two_matches_sort(counts):
    arr = np.array(counts, dtype=np.int64)
    c1, c2 = top_two(arr)
    ordered = np.sort(arr)[::-1]
    assert c1 == ordered[0]
    assert c2 == (ordered[1] if arr.size > 1 else 0)
    # and the input is left untouched
    assert (arr == np.array(counts)).all()
