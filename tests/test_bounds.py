"""Tests for the concentration bounds and theorem-side calculators."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import (
    chernoff_upper_additive,
    chernoff_upper_mult,
    corollary1_rounds,
    jensen_mean_square,
    lambda_for,
    lemma10_critical_bias,
    lemma10_probability_floor,
    required_bias,
    required_bias_general,
    reverse_chernoff,
    theorem1_rounds,
    theorem2_k_range,
    theorem2_lower_rounds,
    theorem4_lower_rounds,
)


class TestChernoff:
    def test_mult_form_switch(self):
        # delta <= 4 uses exp(-d^2 mu/4), delta > 4 uses exp(-d mu).
        assert chernoff_upper_mult(10, 2) == pytest.approx(math.exp(-10))
        assert chernoff_upper_mult(10, 5) == pytest.approx(math.exp(-50))

    def test_mult_rejects_bad(self):
        with pytest.raises(ValueError):
            chernoff_upper_mult(-1, 1)
        with pytest.raises(ValueError):
            chernoff_upper_mult(1, 0)

    def test_additive_form(self):
        assert chernoff_upper_additive(100, 10) == pytest.approx(math.exp(-2))

    def test_bounds_actually_bound_binomial(self, rng):
        # Empirical sanity: the additive bound dominates tail frequency.
        n, p = 2000, 0.3
        draws = rng.binomial(n, p, size=20_000)
        lam = 60.0
        emp = float((draws >= n * p + lam).mean())
        assert emp <= chernoff_upper_additive(n, lam) + 0.01

    def test_reverse_chernoff_is_lower_bound(self, rng):
        # X ~ Binomial(m, p), p <= 1/4: P(X - mu >= t) >= exp(-2t^2/mu)/4.
        m, p = 4000, 0.2
        mu = m * p
        t = 40.0
        draws = rng.binomial(m, p, size=40_000)
        emp = float((draws - mu >= t).mean())
        assert emp >= reverse_chernoff(mu, t) - 0.01

    def test_reverse_rejects_bad(self):
        with pytest.raises(ValueError):
            reverse_chernoff(0, 1)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=10))
    def test_jensen(self, values):
        lhs, rhs = jensen_mean_square(np.array(values))
        assert lhs <= rhs + 1e-6


class TestCalculators:
    def test_lambda_small_k_regime(self):
        # 2k below the cube-root cap.
        assert lambda_for(1_000_000, 3) == pytest.approx(6.0)

    def test_lambda_large_k_regime(self):
        n = 1_000_000
        cap = (n / math.log(n)) ** (1 / 3)
        assert lambda_for(n, 10_000) == pytest.approx(cap)

    def test_required_bias_monotone_in_k(self):
        biases = [required_bias(100_000, k) for k in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(biases, biases[1:]))

    def test_required_bias_formula(self):
        n, lam = 10_000, 6.0
        expected = 72 * math.sqrt(2 * lam * n * math.log(n))
        assert required_bias_general(n, lam) == pytest.approx(expected)

    def test_rounds_scales(self):
        assert theorem1_rounds(math.e**2, 3.0) == pytest.approx(6.0)
        assert corollary1_rounds(1_000_000, 4) == pytest.approx(8 * math.log(1_000_000))

    def test_theorem2(self):
        assert theorem2_lower_rounds(math.e**3, 5) == pytest.approx(15.0)
        assert theorem2_k_range(1_000_000) == pytest.approx((1_000_000 / math.log(1_000_000)) ** 0.25)

    def test_theorem4(self):
        assert theorem4_lower_rounds(100, 5) == pytest.approx(4.0)

    def test_lemma10(self):
        assert lemma10_critical_bias(900, 4) == pytest.approx(10.0)
        assert lemma10_probability_floor() == pytest.approx(1 / (16 * math.e))

    def test_validation_errors(self):
        for fn, args in [
            (lambda_for, (1, 1)),
            (required_bias_general, (10, -1)),
            (theorem1_rounds, (1, 1)),
            (theorem2_lower_rounds, (1, 1)),
            (theorem4_lower_rounds, (0, 1)),
            (lemma10_critical_bias, (0, 1)),
        ]:
            with pytest.raises(ValueError):
                fn(*args)

    @given(st.integers(min_value=10, max_value=10**8), st.integers(min_value=1, max_value=10**6))
    def test_lambda_bounds_property(self, n, k):
        lam = lambda_for(n, k)
        assert 0 < lam <= 2 * k
        assert lam <= (n / math.log(n)) ** (1 / 3) + 1e-9
