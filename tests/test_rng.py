"""Tests for the random-stream discipline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import derive_seed, make_rng, spawn_streams, stream_iter


class TestMakeRng:
    def test_from_int(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(make_rng(ss), np.random.Generator)


class TestSpawnStreams:
    def test_reproducible(self):
        a = spawn_streams(5, 3)
        b = spawn_streams(5, 3)
        for ga, gb in zip(a, b):
            assert ga.integers(0, 10**9) == gb.integers(0, 10**9)

    def test_streams_differ(self):
        streams = spawn_streams(5, 4)
        draws = {int(g.integers(0, 10**12)) for g in streams}
        assert len(draws) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)

    def test_zero_streams(self):
        assert spawn_streams(0, 0) == []


class TestStreamIter:
    def test_yields_distinct(self):
        it = stream_iter(9)
        g1, g2 = next(it), next(it)
        assert g1.integers(0, 10**12) != g2.integers(0, 10**12)


class TestDeriveSeed:
    def test_deterministic(self):
        a = np.random.default_rng(derive_seed(1, "exp", 3)).integers(0, 10**9)
        b = np.random.default_rng(derive_seed(1, "exp", 3)).integers(0, 10**9)
        assert a == b

    def test_distinct_paths_differ(self):
        a = np.random.default_rng(derive_seed(1, "exp", 3)).integers(0, 10**12)
        b = np.random.default_rng(derive_seed(1, "exp", 4)).integers(0, 10**12)
        c = np.random.default_rng(derive_seed(1, "other", 3)).integers(0, 10**12)
        assert len({int(a), int(b), int(c)}) == 3

    def test_none_root(self):
        ss = derive_seed(None, "x")
        assert isinstance(ss, np.random.SeedSequence)

    # -- regression: undelimited concatenation collided on all of these -----

    def test_split_string_path_differs_from_joined(self):
        assert derive_seed(1, "ab").entropy != derive_seed(1, "a", "b").entropy

    def test_string_differs_from_codepoint_int(self):
        assert derive_seed(1, "a").entropy != derive_seed(1, 97).entropy

    def test_negative_int_does_not_wrap(self):
        assert derive_seed(1, -1).entropy != derive_seed(1, 0xFFFFFFFF).entropy

    def test_boundary_shift_differs(self):
        assert derive_seed(0, "E1", 23).entropy != derive_seed(0, "E12", 3).entropy

    def test_rejects_unhashable_component_types(self):
        with pytest.raises(TypeError, match="int or str"):
            derive_seed(0, 1.5)

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.text(max_size=8),
            ),
            max_size=4,
        ),
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.text(max_size=8),
            ),
            max_size=4,
        ),
    )
    def test_distinct_paths_give_distinct_entropy(self, path_a, path_b):
        a = derive_seed(0, *path_a)
        b = derive_seed(0, *path_b)
        if tuple(path_a) == tuple(path_b):
            assert a.entropy == b.entropy
        else:
            assert a.entropy != b.entropy
            assert not np.array_equal(a.generate_state(4), b.generate_state(4))
