"""Tests for the D3 class machinery (Theorem 3 substrate)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Configuration,
    ThreeInputRule,
    all_position_rules,
    first_rule,
    majority_rule,
    majority_uniform_rule,
    max_rule,
    median_rule,
    min_rule,
    run_process,
    skewed_rule,
)
from repro.core.threeinput import DISTINCT_PATTERNS, PAIR_PATTERNS


class TestClassification:
    def test_majority_is_m3(self):
        rule = majority_rule()
        assert rule.has_clear_majority_property()
        assert rule.has_uniform_property()
        assert rule.is_three_majority()
        assert rule.delta_counters() == (2, 2, 2)

    def test_majority_uniform_is_m3(self):
        assert majority_uniform_rule().is_three_majority()

    def test_median_delta(self):
        rule = median_rule()
        assert rule.delta_counters() == (0, 6, 0)
        assert rule.has_clear_majority_property()
        assert not rule.has_uniform_property()
        assert not rule.is_three_majority()

    def test_min_max_delta(self):
        assert min_rule().delta_counters() == (6, 0, 0)
        assert max_rule().delta_counters() == (0, 0, 6)
        assert not min_rule().has_clear_majority_property()

    def test_first_rule_is_uniform_but_not_clear_majority(self):
        rule = first_rule()
        assert rule.delta_counters() == (2, 2, 2)
        assert rule.has_uniform_property()
        assert not rule.has_clear_majority_property()
        assert not rule.is_three_majority()

    def test_skewed_rule_deltas(self):
        for delta in [(1, 3, 2), (0, 4, 2), (3, 3, 0), (6, 0, 0)]:
            rule = skewed_rule(delta)
            assert rule.delta_counters() == tuple(float(d) for d in delta)
            assert rule.has_clear_majority_property()

    def test_skewed_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            skewed_rule((1, 1, 1))

    def test_delta_counters_sum_to_six(self):
        for rule in all_position_rules()[:50]:
            assert sum(rule.delta_counters()) == 6

    def test_all_position_rules_count(self):
        rules = all_position_rules()
        assert len(rules) == 3**6
        uniform = [r for r in rules if r.has_uniform_property()]
        # The number of position assignments with delta = (2,2,2).
        assert len(uniform) > 0
        for r in uniform:
            assert r.is_three_majority()


class TestValidation:
    def test_missing_pair_pattern(self):
        with pytest.raises(ValueError, match="missing pattern"):
            ThreeInputRule({"XXY": "major"}, "uniform")

    def test_bad_pair_choice(self):
        with pytest.raises(ValueError, match="invalid pair choice"):
            ThreeInputRule({p: "weird" for p in PAIR_PATTERNS}, "uniform")

    def test_missing_distinct_pattern(self):
        with pytest.raises(ValueError, match="missing patterns"):
            ThreeInputRule({p: "major" for p in PAIR_PATTERNS}, {(0, 1, 2): 0})

    def test_bad_position(self):
        choice = {pat: 0 for pat in DISTINCT_PATTERNS}
        choice[(0, 1, 2)] = 5
        with pytest.raises(ValueError, match="position"):
            ThreeInputRule({p: "major" for p in PAIR_PATTERNS}, choice)

    def test_bad_distinct_string(self):
        with pytest.raises(ValueError, match="unknown distinct_choice"):
            ThreeInputRule({p: "major" for p in PAIR_PATTERNS}, "random")


class TestApply:
    def test_all_equal(self, rng):
        rule = majority_rule()
        out = rule.apply(np.array([2, 0]), np.array([2, 0]), np.array([2, 0]), rng)
        assert out.tolist() == [2, 0]

    def test_clear_majorities(self, rng):
        rule = majority_rule()
        a = np.array([1, 0, 2])
        b = np.array([1, 3, 0])
        c = np.array([0, 3, 2])
        # patterns: XXY (maj 1), YXX (maj 3), XYX (maj 2)
        assert rule.apply(a, b, c, rng).tolist() == [1, 3, 2]

    def test_first_rule_returns_position_zero(self, rng):
        rule = first_rule()
        a, b, c = np.array([4]), np.array([2]), np.array([7])
        assert rule.apply(a, b, c, rng).tolist() == [4]
        # and on YXX pairs it returns the minority = first input
        assert rule.apply(np.array([0]), np.array([5]), np.array([5]), rng).tolist() == [0]

    def test_min_max_rules(self, rng):
        a, b, c = np.array([3, 3]), np.array([1, 1]), np.array([2, 2])
        assert min_rule().apply(a, b, c, rng).tolist() == [1, 1]
        assert max_rule().apply(a, b, c, rng).tolist() == [3, 3]
        # pairs: min of (5,5,2) is 2 even though 5 is the majority
        assert min_rule().apply(np.array([5]), np.array([5]), np.array([2]), rng).tolist() == [2]

    def test_median_rule_picks_middle(self, rng):
        for a, b, c in itertools.permutations((0, 1, 2)):
            out = median_rule().apply(np.array([a]), np.array([b]), np.array([c]), rng)
            assert out.tolist() == [1]

    def test_output_always_among_inputs(self, rng):
        # The f(x) ∈ {x1,x2,x3} requirement of Definition 1.
        for rule in [majority_rule(), median_rule(), min_rule(), first_rule(), skewed_rule()]:
            a = rng.integers(0, 5, 200)
            b = rng.integers(0, 5, 200)
            c = rng.integers(0, 5, 200)
            out = rule.apply(a, b, c, rng)
            assert ((out == a) | (out == b) | (out == c)).all(), rule.name


class TestExactLaw:
    def test_majority_rule_law_matches_lemma1(self):
        from repro.core.majority import three_majority_law

        counts = np.array([5, 3, 2])
        for rule in (majority_rule(), majority_uniform_rule()):
            assert np.allclose(rule.color_law(counts), three_majority_law(counts)), rule.name

    def test_law_is_distribution_for_panel(self):
        counts = np.array([4, 3, 2, 1])
        for rule in [median_rule(), min_rule(), max_rule(), first_rule(), skewed_rule()]:
            law = rule.color_law(counts)
            assert law.sum() == pytest.approx(1.0), rule.name
            assert (law >= 0).all()

    def test_law_matches_empirical_step(self, rng):
        counts = np.array([50, 30, 20])
        rule = skewed_rule((1, 3, 2))
        law = rule.color_law(counts)
        reps = 600
        acc = np.zeros(3)
        for _ in range(reps):
            acc += rule.step(counts, rng)
        mean = acc / reps / 100
        stderr = np.sqrt(0.25 / (100 * reps))
        assert np.all(np.abs(mean - law) < 8 * stderr)

    def test_first_rule_law_is_voter(self):
        # f = x1 copies a uniform sample: law must be c/n.
        counts = np.array([5, 3, 2])
        assert np.allclose(first_rule().color_law(counts), counts / 10)


class TestEndToEnd:
    def test_majority_solves_plurality(self):
        cfg = Configuration([600, 300, 100])
        res = run_process(majority_rule(), cfg, rng=1, max_rounds=2_000)
        assert res.plurality_won

    def test_median_rule_elects_median(self):
        cfg = Configuration([400, 330, 270])
        winners = [
            run_process(median_rule(), cfg, rng=s, max_rounds=5_000).winner for s in range(8)
        ]
        assert winners.count(1) >= 6

    @settings(max_examples=15)
    @given(st.integers(min_value=0, max_value=3**6 - 1))
    def test_every_position_rule_preserves_mass(self, idx):
        rule = all_position_rules()[idx]
        rng = np.random.default_rng(idx)
        counts = np.array([20, 15, 10, 5])
        out = rule.step(counts, rng)
        assert out.sum() == 50
        assert (out >= 0).all()
